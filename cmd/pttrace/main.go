// Command pttrace runs a small fork/join program under a chosen
// scheduler with event tracing enabled and renders a per-processor
// Gantt chart — a direct way to *see* the difference between the
// breadth-first FIFO queue and the depth-first space-efficient
// scheduler. It can also export the run for interactive inspection:
// Chrome trace-event JSON (load in https://ui.perfetto.dev or
// chrome://tracing), a JSONL event stream, and the space-over-time
// profile as CSV.
//
//	pttrace [-policy adf|fifo|lifo|ws|dfd|rr] [-procs 4] [-depth 5] [-width 100]
//	        [-out trace.json] [-events events.jsonl] [-space space.csv]
//	        [-dot dag.dot]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"spthreads/internal/trace"
	"spthreads/pthread"
)

func main() {
	policy := flag.String("policy", "adf", "scheduler: fifo, lifo, adf, ws, dfd, rr")
	procs := flag.Int("procs", 4, "virtual processors")
	depth := flag.Int("depth", 5, "fork-tree depth (2^depth leaves)")
	width := flag.Int("width", 100, "gantt chart width in buckets")
	outPath := flag.String("out", "", "write the run as Chrome trace-event JSON (Perfetto/chrome://tracing) to this file")
	eventsPath := flag.String("events", "", "write the raw event stream as JSONL to this file")
	spacePath := flag.String("space", "", "write the space-over-time profile as CSV to this file")
	dotPath := flag.String("dot", "", "also write the computation DAG as Graphviz DOT to this file")
	flag.Parse()

	if !validPolicy(*policy) {
		fmt.Fprintf(os.Stderr, "pttrace: unknown policy %q (valid: %s)\n\n", *policy, policyNames())
		flag.Usage()
		os.Exit(2)
	}

	rec := pthread.NewTraceRecorder(1 << 20)
	reg := pthread.NewMetrics()
	prof := pthread.NewSpaceProfiler(0)
	var g *pthread.DAGBuilder
	if *dotPath != "" {
		g = pthread.NewDAGBuilder()
	}
	cfg := pthread.Config{
		Procs:        *procs,
		Policy:       pthread.Policy(*policy),
		DefaultStack: pthread.SmallStackSize,
		Tracer:       rec,
		DAG:          g,
		Metrics:      reg,
		SpaceProf:    prof,
	}

	var tree func(t *pthread.T, d int)
	tree = func(t *pthread.T, d int) {
		t.Charge(5000)
		if d == 0 {
			a := t.Malloc(32 << 10)
			t.TouchAll(a)
			t.Charge(40000)
			t.Free(a)
			return
		}
		t.Par(
			func(ct *pthread.T) { tree(ct, d-1) },
			func(ct *pthread.T) { tree(ct, d-1) },
		)
	}
	stats, err := pthread.Run(cfg, func(t *pthread.T) { tree(t, *depth) })
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("policy=%s procs=%d: %d threads, peak live %d, time %v, heap HWM %d B\n\n",
		*policy, *procs, stats.ThreadsCreated, stats.PeakLive, stats.Time, stats.HeapHWM)
	if g != nil {
		if err := os.WriteFile(*dotPath, []byte(g.DOT()), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("DAG: work %v, span %v, parallelism %.1f, S1 %d B -> %s\n\n",
			g.TotalWork(), g.Span(), float64(g.TotalWork())/float64(g.Span()), g.SerialSpace(1), *dotPath)
	}
	fmt.Print(rec.Gantt(*procs, *width))

	fmt.Println("\nspace over virtual time:")
	fmt.Print(prof.Curves(*width))

	if m := stats.Metrics; m != nil {
		fmt.Printf("\nmetrics: dispatches=%d quota-preempts=%d dummy-forks=%d",
			m.Counters["sched.dispatches"], m.Counters["sched.quota.preempts"],
			m.Counters["sched.dummy.forks"])
		if h, ok := m.Histograms["sched.dispatch.wait"]; ok {
			fmt.Printf(" dispatch-wait-p50=%dcy p99=%dcy", h.P50, h.P99)
		}
		if gv, ok := m.Gauges["adf.placeholders"]; ok {
			fmt.Printf(" max-placeholders=%d", gv.Max)
		}
		fmt.Println()
	}

	fmt.Println("\nbusiest threads (by dispatch count):")
	sum := rec.Summary()
	shown := 0
	for i := len(sum) - 1; i >= 0 && shown < 5; i-- {
		s := sum[i]
		if s.Dispatches < 2 {
			continue
		}
		fmt.Printf("  thread %-4d dispatched %d times, lifetime %v\n", s.Thread, s.Dispatches, s.Lifetime)
		shown++
	}
	if shown == 0 {
		fmt.Println("  (every thread ran in a single dispatch)")
	}

	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			log.Fatal(err)
		}
		if err := rec.WriteChrome(f, *procs, spaceCounters(prof)); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nwrote Chrome trace -> %s (load in https://ui.perfetto.dev)\n", *outPath)
	}
	if *eventsPath != "" {
		f, err := os.Create(*eventsPath)
		if err != nil {
			log.Fatal(err)
		}
		if err := rec.WriteJSONL(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %d events as JSONL -> %s\n", len(rec.Events()), *eventsPath)
	}
	if *spacePath != "" {
		f, err := os.Create(*spacePath)
		if err != nil {
			log.Fatal(err)
		}
		if err := prof.WriteCSV(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote space profile CSV -> %s\n", *spacePath)
	}
}

// spaceCounters converts the space profile into Chrome counter tracks
// (downsampled so huge runs stay loadable).
func spaceCounters(prof *pthread.SpaceProfiler) []trace.CounterSample {
	samples := prof.Downsample(2048)
	out := make([]trace.CounterSample, 0, 2*len(samples))
	for _, s := range samples {
		out = append(out,
			trace.CounterSample{At: s.At, Name: "space (bytes)", Series: map[string]int64{
				"heap": s.Heap, "stack": s.Stack,
			}},
			trace.CounterSample{At: s.At, Name: "live threads", Series: map[string]int64{
				"live": int64(s.Live),
			}})
	}
	return out
}

func validPolicy(name string) bool {
	for _, p := range pthread.Policies() {
		if string(p) == name {
			return true
		}
	}
	return false
}

func policyNames() string {
	var s string
	for i, p := range pthread.Policies() {
		if i > 0 {
			s += ", "
		}
		s += string(p)
	}
	return s
}
