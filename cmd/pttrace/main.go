// Command pttrace runs a small fork/join program under a chosen
// scheduler with event tracing enabled and renders a per-processor
// Gantt chart — a direct way to *see* the difference between the
// breadth-first FIFO queue and the depth-first space-efficient
// scheduler.
//
//	pttrace [-policy adf|fifo|lifo|ws|dfd] [-procs 4] [-depth 5] [-width 100]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"spthreads/pthread"
)

func main() {
	policy := flag.String("policy", "adf", "scheduler: fifo, lifo, adf, ws, dfd, rr")
	procs := flag.Int("procs", 4, "virtual processors")
	depth := flag.Int("depth", 5, "fork-tree depth (2^depth leaves)")
	width := flag.Int("width", 100, "gantt chart width in buckets")
	dotPath := flag.String("dot", "", "also write the computation DAG as Graphviz DOT to this file")
	flag.Parse()

	rec := pthread.NewTraceRecorder(1 << 20)
	var g *pthread.DAGBuilder
	if *dotPath != "" {
		g = pthread.NewDAGBuilder()
	}
	cfg := pthread.Config{
		Procs:        *procs,
		Policy:       pthread.Policy(*policy),
		DefaultStack: pthread.SmallStackSize,
		Tracer:       rec,
		DAG:          g,
	}

	var tree func(t *pthread.T, d int)
	tree = func(t *pthread.T, d int) {
		t.Charge(5000)
		if d == 0 {
			a := t.Malloc(32 << 10)
			t.TouchAll(a)
			t.Charge(40000)
			t.Free(a)
			return
		}
		t.Par(
			func(ct *pthread.T) { tree(ct, d-1) },
			func(ct *pthread.T) { tree(ct, d-1) },
		)
	}
	stats, err := pthread.Run(cfg, func(t *pthread.T) { tree(t, *depth) })
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("policy=%s procs=%d: %d threads, peak live %d, time %v, heap HWM %d B\n\n",
		*policy, *procs, stats.ThreadsCreated, stats.PeakLive, stats.Time, stats.HeapHWM)
	if g != nil {
		if err := os.WriteFile(*dotPath, []byte(g.DOT()), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("DAG: work %v, span %v, parallelism %.1f, S1 %d B -> %s\n\n",
			g.TotalWork(), g.Span(), float64(g.TotalWork())/float64(g.Span()), g.SerialSpace(1), *dotPath)
	}
	fmt.Print(rec.Gantt(*procs, *width))

	fmt.Println("\nbusiest threads (by dispatch count):")
	sum := rec.Summary()
	shown := 0
	for i := len(sum) - 1; i >= 0 && shown < 5; i-- {
		s := sum[i]
		if s.Dispatches < 2 {
			continue
		}
		fmt.Printf("  thread %-4d dispatched %d times, lifetime %v\n", s.Thread, s.Dispatches, s.Lifetime)
		shown++
	}
	if shown == 0 {
		fmt.Println("  (every thread ran in a single dispatch)")
	}
}
