package main

// pttrace -follow: tail a streaming JSONL trace while the run that
// produces it is still going. The source is either an http(s):// URL —
// typically a live debug endpoint's /trace?follow=1 feed — or the path
// of a file that may still be growing (a redirected stream). The tail
// prints machine-level landmarks (envelope crossings, the terminal
// run-end) as they arrive and a final per-kind summary.
//
// Exit status mirrors the offline reader's contract: 0 when the stream
// ends in a clean run-end, 1 when the run-end reports deadlock or
// panic (the run itself failed), 2 when the stream ends — or, for
// files, stalls past the idle window — without any run-end: a
// truncated trace.

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"spthreads/internal/trace"
)

// followIdle is how long a followed file may go without growing before
// the tail declares it truncated (a variable so tests shorten it). An
// HTTP feed needs no idle cutoff: the server holds the stream open
// until the run ends, so EOF itself is the signal.
var followIdle = 5 * time.Second

// runFollow tails src until a run-end event, the stream's end, or (for
// files) an idle window with no growth.
func runFollow(src string, stdout, stderr io.Writer) int {
	var r io.ReadCloser
	streaming := strings.HasPrefix(src, "http://") || strings.HasPrefix(src, "https://")
	if streaming {
		resp, err := http.Get(src)
		if err != nil {
			fmt.Fprintf(stderr, "pttrace: %v\n", err)
			return 1
		}
		if resp.StatusCode != http.StatusOK {
			body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
			resp.Body.Close()
			fmt.Fprintf(stderr, "pttrace: %s: %s: %s\n", src, resp.Status, bytes.TrimSpace(body))
			return 1
		}
		r = resp.Body
	} else {
		f, err := os.Open(src)
		if err != nil {
			fmt.Fprintf(stderr, "pttrace: %v\n", err)
			return 1
		}
		r = f
	}
	defer r.Close()
	return followStream(r, src, streaming, stdout, stderr)
}

// followStream drives the line loop. For a plain file, EOF means "no
// more data yet": the reader polls for growth and only gives up after
// followIdle without a new byte.
func followStream(r io.Reader, src string, streaming bool, stdout, stderr io.Writer) int {
	fmt.Fprintf(stdout, "following %s\n", src)
	br := bufio.NewReader(r)
	var fol trace.JSONLFollower
	var partial []byte
	kinds := make(map[trace.Kind]int64)
	total := int64(0)
	announcedUnit := false
	idleSince := time.Now()
	for {
		chunk, err := br.ReadBytes('\n')
		if len(chunk) > 0 {
			idleSince = time.Now()
		}
		if err == nil || len(chunk) > 0 && chunk[len(chunk)-1] == '\n' {
			line := append(partial, bytes.TrimRight(chunk, "\n")...)
			partial = nil
			e, ok, perr := fol.Line(line)
			if perr != nil {
				fmt.Fprintf(stderr, "pttrace: %s: %v\n", src, perr)
				return 2
			}
			if !announcedUnit && fol.Unit() == trace.UnitWallNS {
				fmt.Fprintf(stdout, "  time unit: %s\n", fol.Unit())
				announcedUnit = true
			}
			if !ok {
				continue
			}
			total++
			kinds[e.Kind]++
			switch e.Kind {
			case trace.KindEnvelopeCross:
				fmt.Fprintf(stdout, "  envelope crossed at %s: footprint %d B\n",
					fol.Unit().FormatDuration(int64(e.At)), e.Arg)
			case trace.KindRunEnd:
				return finishFollow(e, total, kinds, stdout, stderr)
			}
			continue
		}
		// No complete line. Stash the partial tail and decide whether the
		// stream can still grow.
		partial = append(partial, chunk...)
		if err != io.EOF {
			fmt.Fprintf(stderr, "pttrace: %s: %v\n", src, err)
			return 1
		}
		if streaming {
			// The server closed the feed without a run-end.
			fmt.Fprintf(stderr, "pttrace: %s: stream ended after %d events without a run-end (truncated)\n", src, total)
			return 2
		}
		if time.Since(idleSince) > followIdle {
			fmt.Fprintf(stderr, "pttrace: %s: no growth for %s and no run-end after %d events (truncated)\n",
				src, followIdle, total)
			return 2
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// finishFollow reports the terminal event and the stream totals,
// mapping the run-end status to the exit code.
func finishFollow(end trace.Event, total int64, kinds map[trace.Kind]int64, stdout, stderr io.Writer) int {
	fmt.Fprintf(stdout, "  run-end at %s\n", trace.UnitWallNS.FormatDuration(int64(end.At)))
	fmt.Fprintf(stdout, "%d events", total)
	for k := trace.KindCreate; k <= trace.KindEnvelopeCross; k++ {
		if n := kinds[k]; n > 0 {
			fmt.Fprintf(stdout, " %s=%d", k, n)
		}
	}
	fmt.Fprintln(stdout)
	switch end.Arg {
	case trace.RunEndClean:
		fmt.Fprintln(stdout, "run ended clean")
		return 0
	case trace.RunEndDeadlock:
		fmt.Fprintln(stderr, "pttrace: run ended in deadlock")
		return 1
	case trace.RunEndPanic:
		fmt.Fprintln(stderr, "pttrace: run ended in panic")
		return 1
	default:
		fmt.Fprintf(stderr, "pttrace: run ended with unknown status %d\n", end.Arg)
		return 1
	}
}
