// Command ptbench regenerates the paper's tables and figures on the
// simulated machine.
//
// Usage:
//
//	ptbench list
//	ptbench [-scale small|paper] [-procs 1,2,4,8] <experiment id>...
//	ptbench -scale paper all
//
// Experiment ids follow the paper's artifacts: fig1, fig3, fig5, fig6,
// fig7, fig8, fig9, fig10, fig11, scale, the ablations ablk, ablws and
// abldummy, the future-work extensions ablloc and ablsched, and the
// host-side scheduler cost tracker dispatch — the latter sweeps every
// policy including the ADF order-maintenance variants "adf-treap" (the
// previous treap store) and "adf-ref" (the naive linked-list seed)
// alongside the default DePa-labeled "adf". The contention-sharded
// experiment sweeps the sharded variant "adf-shard" (per-worker label
// heaps with bounded-deviation stealing, Config.SchedShard) against
// the batched global baseline at p up to 1024.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"spthreads/internal/harness"
	"spthreads/pthread"
)

func main() {
	scale := flag.String("scale", "paper", "problem scale: small or paper")
	procsFlag := flag.String("procs", "", "comma-separated processor counts to sweep (default per experiment)")
	backend := flag.String("backend", "", "execution backend for the backends experiment: sim, native, or both (default both)")
	engine := flag.String("engine", "", "native execution engine for single-engine native rows: "+engineList()+" (default reference; the native-tuned experiment sweeps both)")
	repeat := flag.Int("repeat", 1, "repetitions per wall-clock measurement; the median run is reported")
	httpAddr := flag.String("http", "", "serve the live debug endpoint (/metrics, /statusz, /trace, /debug/pprof) at this address during live-observability runs")
	jsonOut := flag.Bool("json", false, "also rerun each experiment with instruments attached and write BENCH_<id>.json")
	outDir := flag.String("outdir", ".", "directory for -json output files")
	flag.Usage = usage
	flag.Parse()

	args := flag.Args()
	if len(args) == 0 {
		usage()
		os.Exit(2)
	}
	if args[0] == "list" {
		listExperiments()
		return
	}

	switch *backend {
	case "", "both", "sim", "native":
	default:
		fmt.Fprintf(os.Stderr, "ptbench: bad -backend %q (want sim, native, or both)\n", *backend)
		os.Exit(2)
	}
	if *repeat < 1 {
		fmt.Fprintf(os.Stderr, "ptbench: -repeat must be at least 1\n")
		os.Exit(2)
	}
	if *engine != "" && !validEngine(*engine) {
		fmt.Fprintf(os.Stderr, "ptbench: bad -engine %q (want %s)\n", *engine, engineList())
		os.Exit(2)
	}
	opt := harness.Options{Scale: *scale, Backend: *backend, Engine: *engine, Repeat: *repeat, HTTPAddr: *httpAddr}
	if *procsFlag != "" {
		for _, f := range strings.Split(*procsFlag, ",") {
			p, err := strconv.Atoi(strings.TrimSpace(f))
			if err != nil || p <= 0 {
				fmt.Fprintf(os.Stderr, "ptbench: bad -procs entry %q\n", f)
				os.Exit(2)
			}
			opt.Procs = append(opt.Procs, p)
		}
	}

	ids := args
	if len(args) == 1 && args[0] == "all" {
		ids = nil
		for _, e := range harness.Experiments() {
			ids = append(ids, e.ID)
		}
	}
	for _, id := range ids {
		e, ok := harness.Find(id)
		if !ok {
			fmt.Fprintf(os.Stderr, "ptbench: unknown experiment %q (available: %s)\n",
				id, strings.Join(experimentIDs(), " "))
			os.Exit(2)
		}
		fmt.Printf("== %s: %s\n   %s\n\n", e.ID, e.Title, e.What)
		start := time.Now()
		if err := e.Run(os.Stdout, opt); err != nil {
			fmt.Fprintf(os.Stderr, "ptbench: %s failed: %v\n", id, err)
			os.Exit(1)
		}
		fmt.Printf("\n   [%s completed in %.1fs wall clock]\n\n", e.ID, time.Since(start).Seconds())
		if *jsonOut {
			if err := writeJSON(e, opt, *outDir); err != nil {
				fmt.Fprintf(os.Stderr, "ptbench: %s json: %v\n", id, err)
				os.Exit(1)
			}
		}
	}
}

// writeJSON reruns the experiment's JSON emitter and writes
// BENCH_<id>.json into dir. Experiments without an emitter are skipped
// with a notice.
func writeJSON(e harness.Experiment, opt harness.Options, dir string) error {
	if e.JSON == nil {
		fmt.Fprintf(os.Stderr, "ptbench: %s has no JSON emitter; skipping\n", e.ID)
		return nil
	}
	res, err := e.JSON(opt)
	if err != nil {
		return err
	}
	path := filepath.Join(dir, "BENCH_"+e.ID+".json")
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := res.Write(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("   wrote %s\n\n", path)
	return nil
}

func listExperiments() {
	for _, e := range harness.Experiments() {
		fmt.Printf("%-11s %s\n            %s\n", e.ID, e.Title, e.What)
	}
}

// validEngine reports whether name is a registered native engine.
func validEngine(name string) bool {
	for _, e := range pthread.Engines() {
		if string(e) == name {
			return true
		}
	}
	return false
}

// engineList renders the engine registry for usage text.
func engineList() string {
	var s string
	for i, e := range pthread.Engines() {
		if i > 0 {
			s += " or "
		}
		s += string(e)
	}
	return s
}

// experimentIDs returns every registered experiment id, sorted.
func experimentIDs() []string {
	var ids []string
	for _, e := range harness.Experiments() {
		ids = append(ids, e.ID)
	}
	return ids
}

func usage() {
	fmt.Fprintf(os.Stderr, `ptbench regenerates the paper's tables and figures.

usage:
  ptbench list
  ptbench [-scale small|paper] [-procs 1,2,4,8] [-backend sim|native|both] [-repeat N] [-json] <experiment id>...
  ptbench all

experiments: %s

-json writes each experiment's machine-readable result as
BENCH_<id>.json (flags must precede the experiment ids).
`, strings.Join(experimentIDs(), " "))
	flag.PrintDefaults()
}
