// Command benchdiff compares two of ptbench's machine-readable outputs
// (BENCH_<id>.json) run-by-run and prints per-metric percent deltas.
// With -threshold it exits non-zero when any metric regresses by more
// than the given percentage — lower-is-better metrics (virtual time,
// footprints, dispatch cost) growing, or higher-is-better metrics
// (speedup) shrinking — making it usable as a CI regression gate:
//
//	ptbench -json fig1
//	benchdiff -threshold 10 baseline/BENCH_fig1.json BENCH_fig1.json
//	benchdiff -threshold 10 -metric sched.lock.wait old.json new.json
//
// -metric restricts the comparison to a comma-separated list of metric
// names; sched.lock.wait (the scheduler-lock wait histogram sum from
// the run's metrics snapshot) lets CI gate contention as well as
// runtime. Runs are matched by (bench, policy, procs, live_threads)
// and, when present, the scheduler batch size, the sharded-scheduler
// marker with its steal window, the execution backend, and the native
// engine; runs present in only one file are reported but are not
// failures. Native-backend rows are host wall-clock measurements:
// their deltas are printed but never trip the threshold (sim rows,
// being deterministic, still gate), and the wall_ms and
// ns_per_dispatch metrics are report-only on every backend by default
// — the dispatch sweep gates on vops_per_dispatch, the deterministic
// virtual structure-operation count, instead.
//
// The one exception is an explicit same-host wall-clock budget:
// naming wall_ms with -metric arms it as a real gate, native rows
// included, on row pairs whose repeat is at least 9 on both sides —
// an opt-in that keeps default all-metric diffs (often against a
// baseline recorded on another host) from gating wall clocks, while
// letting CI bound a freshly measured same-host comparison:
//
//	benchdiff -threshold 75 -metric wall_ms old.json new.json
//
// -max name=value[,name=value...] adds an absolute ceiling: every run
// in the NEW file whose named metric is present must not exceed value.
// Unlike -threshold it is not relative to the old file and it applies
// to native rows too — it is how CI gates the native-obs tracer
// overhead (a bound on overhead_pct, which is already a ratio of two
// same-host wall times and therefore host-comparable):
//
//	benchdiff -max overhead_pct=10 BENCH_7.json BENCH_native-obs.json
//
// Exit status: 0 when within threshold and ceilings, 1 on regression
// or exceeded ceiling, 2 on usage or unreadable input.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"
)

// metric describes one compared quantity.
type metric struct {
	name string
	// higherIsBetter flips the regression direction (speedup).
	higherIsBetter bool
	// reportOnly metrics print their deltas but never trip the
	// threshold (host-dependent wall-clock times).
	reportOnly bool
	// minRepeat, when nonzero, overrides reportOnly and the native
	// exemption: the metric gates — on every backend, native included —
	// when it is explicitly named in -metric AND both matched rows
	// report at least this many repetitions. Opting in by name keeps
	// default all-metric diffs (often cross-host) from gating wall
	// clocks; the repetition floor keeps single-shot medians from
	// gating on noise.
	minRepeat int
	get       func(r benchRun) (float64, bool)
}

// benchRun mirrors the numeric subset of harness.BenchRun that the
// diff compares (parsed loosely so schema growth never breaks it).
type benchRun struct {
	Bench       string  `json:"bench"`
	Policy      string  `json:"policy"`
	Procs       int     `json:"procs"`
	Batch       int     `json:"batch"`
	Backend     string  `json:"backend"`
	Engine      string  `json:"engine"`
	Repeat      int     `json:"repeat"`
	Shard       bool    `json:"shard"`
	StealWindow int     `json:"steal_window"`
	Tracer      bool    `json:"tracer"`
	Sampler     bool    `json:"sampler"`
	LiveThreads  int     `json:"live_threads"`
	TimeCycles   float64 `json:"time_cycles"`
	WallMS       float64 `json:"wall_ms"`
	Speedup      float64 `json:"speedup"`
	HeapHWM      float64 `json:"heap_hwm_bytes"`
	StackHWM     float64 `json:"stack_hwm_bytes"`
	TotalHWM     float64 `json:"total_hwm_bytes"`
	NSDispatch   float64 `json:"ns_per_dispatch"`
	VOpsDispatch float64 `json:"vops_per_dispatch"`
	OverheadPct  float64 `json:"overhead_pct"`
	WallVsRefPct float64 `json:"wall_vs_reference_pct"`
	TraceDropped float64 `json:"trace_dropped"`
	SamplerOverheadPct float64 `json:"sampler_overhead_pct"`
	LockWaitVsGlobalPct float64 `json:"lock_wait_vs_global_pct"`
	Metrics     *struct {
		Histograms map[string]struct {
			Count float64 `json:"count"`
			Sum   float64 `json:"sum"`
		} `json:"histograms"`
	} `json:"metrics"`
	Analysis *struct {
		Work  float64 `json:"work_cycles"`
		Depth float64 `json:"depth_cycles"`
		S1    float64 `json:"serial_space_bytes"`
		Peak  float64 `json:"peak_bytes"`
	} `json:"analysis"`
}

type benchFile struct {
	Experiment string     `json:"experiment"`
	Runs       []benchRun `json:"runs"`
}

// wallGateMinRepeat is the repetition floor for the explicit wall_ms
// gate: medians over at least this many interleaved runs are stable
// enough on one host to carry a (generous) relative threshold.
const wallGateMinRepeat = 9

var metrics = []metric{
	{name: "time_cycles", get: func(r benchRun) (float64, bool) { return r.TimeCycles, r.TimeCycles > 0 }},
	// Wall clock is host-dependent, so a default all-metric diff (often
	// comparing against another host's committed baseline) only reports
	// it. Naming it with -metric on a same-host pair whose rows both
	// carry repeat >= 9 turns it into a real budget gate, native rows
	// included.
	{name: "wall_ms", reportOnly: true, minRepeat: wallGateMinRepeat,
		get: func(r benchRun) (float64, bool) { return r.WallMS, r.WallMS > 0 }},
	{name: "speedup", higherIsBetter: true, get: func(r benchRun) (float64, bool) { return r.Speedup, r.Speedup > 0 }},
	{name: "heap_hwm_bytes", get: func(r benchRun) (float64, bool) { return r.HeapHWM, r.HeapHWM > 0 }},
	{name: "stack_hwm_bytes", get: func(r benchRun) (float64, bool) { return r.StackHWM, r.StackHWM > 0 }},
	{name: "total_hwm_bytes", get: func(r benchRun) (float64, bool) { return r.TotalHWM, r.TotalHWM > 0 }},
	// Wall ns per dispatch depends on the host that ran the sweep;
	// vops_per_dispatch is the deterministic virtual structure-operation
	// count and carries the gate instead.
	{name: "ns_per_dispatch", reportOnly: true, get: func(r benchRun) (float64, bool) { return r.NSDispatch, r.NSDispatch > 0 }},
	{name: "vops_per_dispatch", get: func(r benchRun) (float64, bool) { return r.VOpsDispatch, r.VOpsDispatch > 0 }},
	// Tracer overhead is a ratio of two same-host wall times, so the
	// absolute -max ceiling gates it; a relative delta between two hosts'
	// overhead percentages is noise, hence report-only here. Negative
	// values (measurement noise on an effectively free tracer) are valid.
	{name: "overhead_pct", reportOnly: true, get: func(r benchRun) (float64, bool) { return r.OverheadPct, r.Tracer }},
	// Sampler overhead follows the same pattern: a same-host wall-time
	// ratio gated by -max, noise as a cross-file delta.
	{name: "sampler_overhead_pct", reportOnly: true, get: func(r benchRun) (float64, bool) { return r.SamplerOverheadPct, r.Sampler }},
	// The tuned engine's best wall time over the reference engine's, as
	// a percentage (100 = parity; the native-tuned experiment). Another
	// same-host ratio: CI bounds it with -max (e.g. 105 = "tuned may
	// not be more than 5% slower"), cross-file deltas are reported only.
	// Present only on tuned rows whose pair produced a baseline.
	{name: "wall_vs_reference_pct", reportOnly: true, get: func(r benchRun) (float64, bool) {
		return r.WallVsRefPct, r.Engine == "tuned" && r.WallVsRefPct > 0
	}},
	// Dropped trace events on any traced row. Zero is the expected value
	// (presence of the tracer, not positivity, gates it), so a -max
	// ceiling of 0 fails the moment a live-obs row starts dropping.
	{name: "trace_dropped", reportOnly: true, get: func(r benchRun) (float64, bool) { return r.TraceDropped, r.Tracer }},
	{name: "analysis.work_cycles", get: func(r benchRun) (float64, bool) {
		return fromAnalysis(r, func(a struct{ Work, Depth, S1, Peak float64 }) float64 { return a.Work })
	}},
	{name: "analysis.depth_cycles", get: func(r benchRun) (float64, bool) {
		return fromAnalysis(r, func(a struct{ Work, Depth, S1, Peak float64 }) float64 { return a.Depth })
	}},
	{name: "analysis.serial_space_bytes", get: func(r benchRun) (float64, bool) {
		return fromAnalysis(r, func(a struct{ Work, Depth, S1, Peak float64 }) float64 { return a.S1 })
	}},
	{name: "analysis.peak_bytes", get: func(r benchRun) (float64, bool) {
		return fromAnalysis(r, func(a struct{ Work, Depth, S1, Peak float64 }) float64 { return a.Peak })
	}},
	// Native lock wait relative to the matching global-store baseline row
	// (the contention-sharded experiment). A same-host ratio like the
	// overhead percentages: gated by an absolute -max ceiling, reported
	// only as a cross-file delta. Zero (an uncontended pair) is valid, so
	// presence of the shard marker gates it.
	{name: "lock_wait_vs_global_pct", reportOnly: true, get: func(r benchRun) (float64, bool) {
		return r.LockWaitVsGlobalPct, r.Shard && r.Backend == "native"
	}},
	// Contention: total virtual time spent waiting on the scheduler lock
	// (histogram sum from the run's metrics snapshot). Zero is a valid
	// value — an uncontended run is comparable and any growth is a
	// regression — so presence of the histogram, not positivity, gates it.
	{name: "sched.lock.wait", get: func(r benchRun) (float64, bool) {
		if r.Metrics == nil {
			return 0, false
		}
		h, ok := r.Metrics.Histograms["sched.lock.wait"]
		return h.Sum, ok
	}},
}

func fromAnalysis(r benchRun, f func(struct{ Work, Depth, S1, Peak float64 }) float64) (float64, bool) {
	if r.Analysis == nil {
		return 0, false
	}
	v := f(struct{ Work, Depth, S1, Peak float64 }{r.Analysis.Work, r.Analysis.Depth, r.Analysis.S1, r.Analysis.Peak})
	return v, v > 0
}

func key(r benchRun) string {
	k := fmt.Sprintf("%s|%s|p%d|n%d", r.Bench, r.Policy, r.Procs, r.LiveThreads)
	if r.Batch > 0 {
		k += fmt.Sprintf("|b%d", r.Batch)
	}
	if r.Shard {
		// Sharded rows carry their steal window so the contention-sharded
		// sweep's K arms never collide (w0 is the default window K=p).
		k += fmt.Sprintf("|shard|w%d", r.StealWindow)
	}
	if r.Backend != "" {
		k += "|" + r.Backend
	}
	if r.Engine != "" {
		// Engine-keyed native rows: reference and tuned runs of the same
		// configuration diff only against their own engine (rows from
		// before the engine seam carry no engine and keep their old keys).
		k += "|" + r.Engine
	}
	if r.Tracer {
		k += "|tracer"
	}
	if r.Sampler {
		k += "|sampler"
	}
	return k
}

// gated reports whether a run participates in the regression gate.
// Native-backend rows are wall-clock measurements on whatever host ran
// them — they are printed for the record but never fail the diff.
func gated(r benchRun) bool { return r.Backend != "native" }

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchdiff", flag.ContinueOnError)
	fs.SetOutput(stderr)
	threshold := fs.Float64("threshold", 0, "fail (exit 1) when any metric regresses by more than this percent (0: report only)")
	metricFlag := fs.String("metric", "", "comma-separated metric names to compare (default: all); e.g. -metric sched.lock.wait")
	maxFlag := fs.String("max", "", "comma-separated absolute ceilings name=value on runs in new.json; applies to native rows too, e.g. -max overhead_pct=10")
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: benchdiff [-threshold pct] [-metric name,...] [-max name=value,...] old.json new.json")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 2 {
		fs.Usage()
		return 2
	}
	ceilings, err := parseMax(*maxFlag)
	if err != nil {
		fmt.Fprintf(stderr, "benchdiff: %v (known metrics: %s)\n", err, strings.Join(metricNames(), ", "))
		return 2
	}
	compared := metrics
	// explicit marks metrics the user named with -metric: the opt-in
	// that arms minRepeat gating.
	explicit := make(map[string]bool)
	if *metricFlag != "" {
		byName := make(map[string]metric, len(metrics))
		for _, m := range metrics {
			byName[m.name] = m
		}
		compared = nil
		for _, name := range strings.Split(*metricFlag, ",") {
			name = strings.TrimSpace(name)
			m, ok := byName[name]
			if !ok {
				fmt.Fprintf(stderr, "benchdiff: unknown -metric %q (known: %s)\n",
					name, strings.Join(metricNames(), ", "))
				return 2
			}
			compared = append(compared, m)
			explicit[name] = true
		}
	}
	oldF, err := load(fs.Arg(0))
	if err != nil {
		fmt.Fprintf(stderr, "benchdiff: %v\n", err)
		return 2
	}
	newF, err := load(fs.Arg(1))
	if err != nil {
		fmt.Fprintf(stderr, "benchdiff: %v\n", err)
		return 2
	}
	if oldF.Experiment != newF.Experiment {
		fmt.Fprintf(stderr, "benchdiff: comparing different experiments: %q vs %q\n",
			oldF.Experiment, newF.Experiment)
		return 2
	}

	oldRuns := make(map[string]benchRun)
	for _, r := range oldF.Runs {
		oldRuns[key(r)] = r
	}
	var keys []string
	newRuns := make(map[string]benchRun)
	for _, r := range newF.Runs {
		k := key(r)
		newRuns[k] = r
		keys = append(keys, k)
	}
	sort.Strings(keys)

	regressed := false
	for _, k := range keys {
		nr := newRuns[k]
		or, ok := oldRuns[k]
		if !ok {
			fmt.Fprintf(stdout, "%s: only in %s\n", k, fs.Arg(1))
			continue
		}
		for _, m := range compared {
			ov, oOK := m.get(or)
			nv, nOK := m.get(nr)
			if !oOK || !nOK {
				continue
			}
			var delta float64
			switch {
			case ov != 0:
				delta = 100 * (nv - ov) / ov
			case nv != 0:
				// From zero to nonzero: infinite relative growth — always
				// past any threshold for a lower-is-better metric.
				delta = math.Inf(1)
				if nv < 0 {
					delta = math.Inf(-1)
				}
			}
			worse := delta
			if m.higherIsBetter {
				worse = -delta
			}
			mark := ""
			if *threshold > 0 && worse > *threshold {
				eligible := gated(nr) && !m.reportOnly
				if m.minRepeat > 0 && explicit[m.name] &&
					or.Repeat >= m.minRepeat && nr.Repeat >= m.minRepeat {
					// Explicitly selected wall-clock budget on repeated
					// medians: gates even on native rows.
					eligible = true
				}
				if eligible {
					mark = "  REGRESSION"
					regressed = true
				} else {
					mark = "  (reported, not gated)"
				}
			}
			if math.Abs(delta) >= 0.005 || mark != "" {
				fmt.Fprintf(stdout, "%-40s %-28s %14.6g -> %14.6g  %+7.2f%%%s\n",
					k, m.name, ov, nv, delta, mark)
			}
		}
	}
	for k := range oldRuns {
		if _, ok := newRuns[k]; !ok {
			fmt.Fprintf(stdout, "%s: only in %s\n", k, fs.Arg(0))
		}
	}
	// Absolute ceilings check every run of the new file, including
	// native rows the relative threshold exempts.
	exceeded := false
	for _, k := range keys {
		nr := newRuns[k]
		for _, c := range ceilings {
			v, ok := c.m.get(nr)
			if !ok {
				continue
			}
			if v > c.limit {
				fmt.Fprintf(stdout, "%-40s %-28s %14.6g > max %g  EXCEEDED\n", k, c.m.name, v, c.limit)
				exceeded = true
			}
		}
	}
	if regressed {
		fmt.Fprintf(stderr, "benchdiff: regressions beyond %.1f%%\n", *threshold)
		return 1
	}
	if exceeded {
		fmt.Fprintf(stderr, "benchdiff: absolute ceilings exceeded\n")
		return 1
	}
	return 0
}

// ceiling is one parsed -max entry.
type ceiling struct {
	m     metric
	limit float64
}

// parseMax parses "-max name=value[,name=value...]" against the known
// metric set.
func parseMax(s string) ([]ceiling, error) {
	if s == "" {
		return nil, nil
	}
	byName := make(map[string]metric, len(metrics))
	for _, m := range metrics {
		byName[m.name] = m
	}
	var out []ceiling
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		name, val, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("bad -max entry %q: want name=value", part)
		}
		m, known := byName[strings.TrimSpace(name)]
		if !known {
			return nil, fmt.Errorf("unknown -max metric %q", name)
		}
		limit, err := strconv.ParseFloat(strings.TrimSpace(val), 64)
		if err != nil {
			return nil, fmt.Errorf("bad -max value in %q: %v", part, err)
		}
		out = append(out, ceiling{m: m, limit: limit})
	}
	return out, nil
}

func metricNames() []string {
	var names []string
	for _, m := range metrics {
		names = append(names, m.name)
	}
	return names
}

func load(path string) (*benchFile, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f benchFile
	if err := json.Unmarshal(raw, &f); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &f, nil
}
