package main

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeJSON(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const oldBench = `{
  "experiment": "fig5",
  "runs": [
    {"policy": "adf", "procs": 4, "time_cycles": 1000000, "total_hwm_bytes": 5000000, "speedup": 3.5},
    {"policy": "fifo", "procs": 4, "time_cycles": 1100000, "total_hwm_bytes": 9000000}
  ]
}`

// TestNoRegression: small improvements and identical runs pass.
func TestNoRegression(t *testing.T) {
	newBench := `{
  "experiment": "fig5",
  "runs": [
    {"policy": "adf", "procs": 4, "time_cycles": 990000, "total_hwm_bytes": 5000000, "speedup": 3.6},
    {"policy": "fifo", "procs": 4, "time_cycles": 1100000, "total_hwm_bytes": 9000000}
  ]
}`
	var out, errb bytes.Buffer
	code := run([]string{"-threshold", "10",
		writeJSON(t, "old.json", oldBench), writeJSON(t, "new.json", newBench)}, &out, &errb)
	if code != 0 {
		t.Fatalf("run = %d, want 0\nstdout: %s\nstderr: %s", code, out.String(), errb.String())
	}
	if !strings.Contains(out.String(), "time_cycles") {
		t.Errorf("diff output missing changed metric:\n%s", out.String())
	}
}

// TestRegressionFails: time growing past the threshold exits 1 and
// names the regression.
func TestRegressionFails(t *testing.T) {
	newBench := `{
  "experiment": "fig5",
  "runs": [
    {"policy": "adf", "procs": 4, "time_cycles": 1300000, "total_hwm_bytes": 5000000, "speedup": 3.5},
    {"policy": "fifo", "procs": 4, "time_cycles": 1100000, "total_hwm_bytes": 9000000}
  ]
}`
	var out, errb bytes.Buffer
	code := run([]string{"-threshold", "10",
		writeJSON(t, "old.json", oldBench), writeJSON(t, "new.json", newBench)}, &out, &errb)
	if code != 1 {
		t.Fatalf("run = %d, want 1\nstdout: %s", code, out.String())
	}
	if !strings.Contains(out.String(), "REGRESSION") {
		t.Errorf("output missing REGRESSION marker:\n%s", out.String())
	}
}

// TestSpeedupDirection: speedup shrinking is the regression, not
// growing.
func TestSpeedupDirection(t *testing.T) {
	newBench := `{
  "experiment": "fig5",
  "runs": [
    {"policy": "adf", "procs": 4, "time_cycles": 1000000, "total_hwm_bytes": 5000000, "speedup": 2.0},
    {"policy": "fifo", "procs": 4, "time_cycles": 1100000, "total_hwm_bytes": 9000000}
  ]
}`
	var out, errb bytes.Buffer
	code := run([]string{"-threshold", "10",
		writeJSON(t, "old.json", oldBench), writeJSON(t, "new.json", newBench)}, &out, &errb)
	if code != 1 {
		t.Fatalf("run = %d, want 1 (speedup fell 43%%)\nstdout: %s", code, out.String())
	}
}

// TestZeroThresholdReportsOnly: without -threshold the tool never
// fails, it only reports.
func TestZeroThresholdReportsOnly(t *testing.T) {
	newBench := `{
  "experiment": "fig5",
  "runs": [
    {"policy": "adf", "procs": 4, "time_cycles": 9000000, "total_hwm_bytes": 5000000, "speedup": 0.5}
  ]
}`
	var out, errb bytes.Buffer
	code := run([]string{writeJSON(t, "old.json", oldBench), writeJSON(t, "new.json", newBench)}, &out, &errb)
	if code != 0 {
		t.Fatalf("run = %d, want 0 without threshold\nstdout: %s", code, out.String())
	}
	if !strings.Contains(out.String(), "only in") {
		t.Errorf("output missing unmatched-run note:\n%s", out.String())
	}
}

// TestExperimentMismatchExits2: comparing different experiments is a
// usage error.
func TestExperimentMismatchExits2(t *testing.T) {
	other := `{"experiment": "fig9", "runs": [{"policy": "adf"}]}`
	var out, errb bytes.Buffer
	code := run([]string{writeJSON(t, "old.json", oldBench), writeJSON(t, "new.json", other)}, &out, &errb)
	if code != 2 {
		t.Fatalf("run = %d, want 2", code)
	}
}

// TestUsage: wrong arity and unreadable files exit 2.
func TestUsage(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run(nil, &out, &errb); code != 2 {
		t.Fatalf("run() = %d, want 2", code)
	}
	if code := run([]string{"/nonexistent/a.json", "/nonexistent/b.json"}, &out, &errb); code != 2 {
		t.Fatalf("run(missing) = %d, want 2", code)
	}
}

// TestLockWaitMetric: the scheduler-lock wait histogram sum from the
// metrics snapshot is compared, -metric restricts the diff to it, and
// batch sizes key separate runs.
func TestLockWaitMetric(t *testing.T) {
	oldC := `{"experiment": "contention", "runs": [
	  {"bench": "matmul", "policy": "adf", "procs": 64, "batch": 1, "time_cycles": 1000,
	   "metrics": {"histograms": {"sched.lock.wait": {"count": 100, "sum": 50000}}}},
	  {"bench": "matmul", "policy": "adf", "procs": 64, "batch": 64, "time_cycles": 900,
	   "metrics": {"histograms": {"sched.lock.wait": {"count": 10, "sum": 1000}}}}
	]}`
	newC := `{"experiment": "contention", "runs": [
	  {"bench": "matmul", "policy": "adf", "procs": 64, "batch": 1, "time_cycles": 1000,
	   "metrics": {"histograms": {"sched.lock.wait": {"count": 100, "sum": 50000}}}},
	  {"bench": "matmul", "policy": "adf", "procs": 64, "batch": 64, "time_cycles": 2500,
	   "metrics": {"histograms": {"sched.lock.wait": {"count": 50, "sum": 9000}}}}
	]}`
	// Restricted to sched.lock.wait: the batch=64 row's 9x growth fails;
	// time_cycles' growth is ignored under -metric.
	var out, errb bytes.Buffer
	code := run([]string{"-threshold", "10", "-metric", "sched.lock.wait",
		writeJSON(t, "old.json", oldC), writeJSON(t, "new.json", newC)}, &out, &errb)
	if code != 1 {
		t.Fatalf("run = %d, want 1 (lock wait grew 9x)\nstdout: %s", code, out.String())
	}
	if !strings.Contains(out.String(), "sched.lock.wait") {
		t.Errorf("output missing sched.lock.wait metric:\n%s", out.String())
	}
	if strings.Contains(out.String(), "time_cycles") {
		t.Errorf("-metric sched.lock.wait still compared time_cycles:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "|b64") {
		t.Errorf("run key missing batch component:\n%s", out.String())
	}
}

// TestMetricFlagUnknownName: a bogus -metric name is a usage error that
// lists the known metrics.
func TestMetricFlagUnknownName(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-metric", "bogus",
		writeJSON(t, "old.json", oldBench), writeJSON(t, "new.json", oldBench)}, &out, &errb)
	if code != 2 {
		t.Fatalf("run = %d, want 2", code)
	}
	if !strings.Contains(errb.String(), "sched.lock.wait") {
		t.Errorf("error does not list known metrics:\n%s", errb.String())
	}
}

// TestZeroToNonzeroLockWait: a metric going from zero (uncontended) to
// nonzero is a regression at any threshold.
func TestZeroToNonzeroLockWait(t *testing.T) {
	oldC := `{"experiment": "contention", "runs": [
	  {"bench": "matmul", "policy": "adf", "procs": 8, "batch": 4,
	   "metrics": {"histograms": {"sched.lock.wait": {"count": 0, "sum": 0}}}}
	]}`
	newC := `{"experiment": "contention", "runs": [
	  {"bench": "matmul", "policy": "adf", "procs": 8, "batch": 4,
	   "metrics": {"histograms": {"sched.lock.wait": {"count": 5, "sum": 800}}}}
	]}`
	var out, errb bytes.Buffer
	code := run([]string{"-threshold", "50", "-metric", "sched.lock.wait",
		writeJSON(t, "old.json", oldC), writeJSON(t, "new.json", newC)}, &out, &errb)
	if code != 1 {
		t.Fatalf("run = %d, want 1 (0 -> 800)\nstdout: %s", code, out.String())
	}
}

// TestAnalysisMetricsCompared: analysis sub-metrics participate in the
// diff.
func TestAnalysisMetricsCompared(t *testing.T) {
	oldA := `{"experiment": "bound-audit", "runs": [
	  {"bench": "matmul", "policy": "adf", "procs": 8, "analysis": {"work_cycles": 1000, "depth_cycles": 100, "serial_space_bytes": 500, "peak_bytes": 600}}
	]}`
	newA := `{"experiment": "bound-audit", "runs": [
	  {"bench": "matmul", "policy": "adf", "procs": 8, "analysis": {"work_cycles": 1000, "depth_cycles": 100, "serial_space_bytes": 500, "peak_bytes": 900}}
	]}`
	var out, errb bytes.Buffer
	code := run([]string{"-threshold", "20",
		writeJSON(t, "old.json", oldA), writeJSON(t, "new.json", newA)}, &out, &errb)
	if code != 1 {
		t.Fatalf("run = %d, want 1 (peak grew 50%%)\nstdout: %s", code, out.String())
	}
	if !strings.Contains(out.String(), "analysis.peak_bytes") {
		t.Errorf("output missing analysis metric:\n%s", out.String())
	}
}

// TestNativeRunsNotGated: a native-backend row blowing past the
// threshold is reported but does not fail the diff; a sim row in the
// same file still gates.
func TestNativeRunsNotGated(t *testing.T) {
	oldB := `{
  "experiment": "backends",
  "runs": [
    {"policy": "adf", "procs": 4, "bench": "matmul", "backend": "native", "wall_ms": 10.0},
    {"policy": "adf", "procs": 4, "bench": "matmul", "backend": "sim", "wall_ms": 12.0, "time_cycles": 1000000}
  ]
}`
	// Native wall clock 3x slower, and even the sim row's host wall
	// clock moved: neither is a gate (wall_ms is report-only).
	newOK := `{
  "experiment": "backends",
  "runs": [
    {"policy": "adf", "procs": 4, "bench": "matmul", "backend": "native", "wall_ms": 30.0},
    {"policy": "adf", "procs": 4, "bench": "matmul", "backend": "sim", "wall_ms": 30.0, "time_cycles": 1000000}
  ]
}`
	var out, errb bytes.Buffer
	code := run([]string{"-threshold", "10",
		writeJSON(t, "old.json", oldB), writeJSON(t, "new.json", newOK)}, &out, &errb)
	if code != 0 {
		t.Fatalf("run = %d, want 0 (native 3x slower is not a gate)\nstdout: %s", code, out.String())
	}
	if !strings.Contains(out.String(), "not gated") {
		t.Errorf("output missing the reported-not-gated marker:\n%s", out.String())
	}

	// The sim row's virtual time regressing still fails.
	newBad := `{
  "experiment": "backends",
  "runs": [
    {"policy": "adf", "procs": 4, "bench": "matmul", "backend": "native", "wall_ms": 10.0},
    {"policy": "adf", "procs": 4, "bench": "matmul", "backend": "sim", "wall_ms": 12.0, "time_cycles": 2000000}
  ]
}`
	out.Reset()
	errb.Reset()
	code = run([]string{"-threshold", "10",
		writeJSON(t, "old.json", oldB), writeJSON(t, "new.json", newBad)}, &out, &errb)
	if code != 1 {
		t.Fatalf("run = %d, want 1 (sim rows still gate)\nstdout: %s", code, out.String())
	}
}

// TestBackendInKey: rows differing only in backend are distinct runs.
func TestBackendInKey(t *testing.T) {
	oldB := `{
  "experiment": "backends",
  "runs": [{"policy": "adf", "procs": 4, "bench": "matmul", "backend": "sim", "time_cycles": 1000000}]
}`
	newB := `{
  "experiment": "backends",
  "runs": [{"policy": "adf", "procs": 4, "bench": "matmul", "backend": "native", "wall_ms": 5.0}]
}`
	var out, errb bytes.Buffer
	code := run([]string{writeJSON(t, "old.json", oldB), writeJSON(t, "new.json", newB)}, &out, &errb)
	if code != 0 {
		t.Fatalf("run = %d, want 0\nstdout: %s", code, out.String())
	}
	if !strings.Contains(out.String(), "only in") {
		t.Errorf("backend-mismatched rows matched each other:\n%s", out.String())
	}
}

// TestDispatchGatesOnVOps: wall ns per dispatch is host-dependent and
// must never trip the gate, while the deterministic virtual-op count
// does — the treap-vs-depa microbench row is gated on structure work,
// not on whatever machine ran CI.
func TestDispatchGatesOnVOps(t *testing.T) {
	oldB := `{
  "experiment": "dispatch",
  "runs": [
    {"policy": "adf", "procs": 1, "live_threads": 10000, "ns_per_dispatch": 50, "vops_per_dispatch": 2.0},
    {"policy": "adf-treap", "procs": 1, "live_threads": 10000, "ns_per_dispatch": 80, "vops_per_dispatch": 18.0}
  ]
}`
	// Wall time doubles (noisy host) but vops hold: must pass.
	noisyWall := `{
  "experiment": "dispatch",
  "runs": [
    {"policy": "adf", "procs": 1, "live_threads": 10000, "ns_per_dispatch": 100, "vops_per_dispatch": 2.0},
    {"policy": "adf-treap", "procs": 1, "live_threads": 10000, "ns_per_dispatch": 160, "vops_per_dispatch": 18.0}
  ]
}`
	var out, errb bytes.Buffer
	code := run([]string{"-threshold", "10",
		writeJSON(t, "old.json", oldB), writeJSON(t, "new.json", noisyWall)}, &out, &errb)
	if code != 0 {
		t.Fatalf("run = %d, want 0 (ns_per_dispatch is report-only)\nstdout: %s", code, out.String())
	}
	if !strings.Contains(out.String(), "ns_per_dispatch") {
		t.Errorf("wall delta not reported:\n%s", out.String())
	}

	// Virtual ops regress (a structure change made dispatch do more
	// work): must fail.
	vopsRegressed := `{
  "experiment": "dispatch",
  "runs": [
    {"policy": "adf", "procs": 1, "live_threads": 10000, "ns_per_dispatch": 50, "vops_per_dispatch": 9.0},
    {"policy": "adf-treap", "procs": 1, "live_threads": 10000, "ns_per_dispatch": 80, "vops_per_dispatch": 18.0}
  ]
}`
	out.Reset()
	errb.Reset()
	code = run([]string{"-threshold", "10",
		writeJSON(t, "old.json", oldB), writeJSON(t, "new.json", vopsRegressed)}, &out, &errb)
	if code != 1 {
		t.Fatalf("run = %d, want 1 (vops_per_dispatch gates)\nstdout: %s", code, out.String())
	}
	if !strings.Contains(out.String(), "vops_per_dispatch") {
		t.Errorf("vops regression not named:\n%s", out.String())
	}
}

// obsBench builds a native-obs style file with tracer-off/on row pairs;
// pct is the on-row overhead percentage.
func obsBench(pct float64) string {
	return fmt.Sprintf(`{
  "experiment": "native-obs",
  "runs": [
    {"policy": "adf", "procs": 4, "bench": "matmul", "backend": "native", "wall_ms": 100},
    {"policy": "adf", "procs": 4, "bench": "matmul", "backend": "native", "wall_ms": 105,
     "tracer": true, "trace_events": 65000, "overhead_pct": %g}
  ]
}`, pct)
}

// TestMaxCeilingGatesNativeRows: -max applies to native rows the
// relative threshold exempts; tracer-on and tracer-off rows are
// distinct keys (no collision).
func TestMaxCeilingGatesNativeRows(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-threshold", "10", "-max", "overhead_pct=10",
		writeJSON(t, "old.json", obsBench(4.5)), writeJSON(t, "new.json", obsBench(6.0))}, &out, &errb)
	if code != 0 {
		t.Fatalf("run = %d, want 0 (6%% under a 10%% ceiling)\nstdout: %s\nstderr: %s",
			code, out.String(), errb.String())
	}
	if strings.Contains(out.String(), "only in") {
		t.Errorf("tracer rows collided or went unmatched:\n%s", out.String())
	}

	out.Reset()
	errb.Reset()
	code = run([]string{"-max", "overhead_pct=10",
		writeJSON(t, "old.json", obsBench(4.5)), writeJSON(t, "new.json", obsBench(17.2))}, &out, &errb)
	if code != 1 {
		t.Fatalf("run = %d, want 1 (17.2%% over a 10%% ceiling)\nstdout: %s", code, out.String())
	}
	if !strings.Contains(out.String(), "EXCEEDED") || !strings.Contains(out.String(), "overhead_pct") {
		t.Errorf("ceiling violation not named:\n%s", out.String())
	}
}

// TestMaxOnlyChecksRowsWithMetric: a ceiling on overhead_pct ignores
// tracer-off rows (no overhead value) and other experiments entirely.
func TestMaxOnlyChecksRowsWithMetric(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-max", "overhead_pct=0.001",
		writeJSON(t, "old.json", oldBench), writeJSON(t, "new.json", oldBench)}, &out, &errb)
	if code != 0 {
		t.Fatalf("run = %d, want 0 (no rows carry overhead_pct)\nstdout: %s", code, out.String())
	}
}

// TestMaxParseErrors: malformed or unknown -max entries exit 2.
func TestMaxParseErrors(t *testing.T) {
	for _, bad := range []string{"overhead_pct", "nope=10", "overhead_pct=abc"} {
		var out, errb bytes.Buffer
		code := run([]string{"-max", bad,
			writeJSON(t, "old.json", oldBench), writeJSON(t, "new.json", oldBench)}, &out, &errb)
		if code != 2 {
			t.Errorf("-max %q: run = %d, want 2\nstderr: %s", bad, code, errb.String())
		}
	}
}

// TestOverheadPctReportOnlyRelative: overhead_pct growing between two
// files never trips the relative threshold (it is host noise); only
// -max gates it.
func TestOverheadPctReportOnlyRelative(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-threshold", "10",
		writeJSON(t, "old.json", obsBench(2.0)), writeJSON(t, "new.json", obsBench(8.0))}, &out, &errb)
	if code != 0 {
		t.Fatalf("run = %d, want 0 (overhead_pct relative delta is report-only)\nstdout: %s", code, out.String())
	}
}

// liveObsBench builds a live-obs style file: an unsampled and a sampled
// arm of the same bench, the sampled row carrying sampler_overhead_pct
// and trace_dropped.
func liveObsBench(ovhPct, dropped float64) string {
	return fmt.Sprintf(`{
  "experiment": "live-obs",
  "runs": [
    {"policy": "adf", "procs": 4, "bench": "dtree", "backend": "native", "wall_ms": 600,
     "tracer": true, "trace_events": 190000},
    {"policy": "adf", "procs": 4, "bench": "dtree", "backend": "native", "wall_ms": 620,
     "tracer": true, "sampler": true, "samples": 22, "trace_events": 190000,
     "trace_dropped": %g, "sampler_overhead_pct": %g}
  ]
}`, dropped, ovhPct)
}

// TestSamplerRowsDistinctKeys: sampler-on and sampler-off arms of the
// same bench are separate runs, not a key collision.
func TestSamplerRowsDistinctKeys(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-threshold", "10",
		writeJSON(t, "old.json", liveObsBench(5, 0)), writeJSON(t, "new.json", liveObsBench(6, 0))}, &out, &errb)
	if code != 0 {
		t.Fatalf("run = %d, want 0\nstdout: %s\nstderr: %s", code, out.String(), errb.String())
	}
	if strings.Contains(out.String(), "only in") {
		t.Errorf("sampler rows collided or went unmatched:\n%s", out.String())
	}
}

// TestSamplerOverheadCeiling: -max sampler_overhead_pct gates the
// sampled arm like overhead_pct gates the traced arm.
func TestSamplerOverheadCeiling(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-max", "sampler_overhead_pct=10",
		writeJSON(t, "old.json", liveObsBench(5, 0)), writeJSON(t, "new.json", liveObsBench(14.5, 0))}, &out, &errb)
	if code != 1 {
		t.Fatalf("run = %d, want 1 (14.5%% over a 10%% ceiling)\nstdout: %s", code, out.String())
	}
	if !strings.Contains(out.String(), "sampler_overhead_pct") || !strings.Contains(out.String(), "EXCEEDED") {
		t.Errorf("ceiling violation not named:\n%s", out.String())
	}
}

// TestTraceDroppedZeroCeiling: a live-obs row going from zero drops to
// any drops fails -max trace_dropped=0 — the drain's zero-loss
// guarantee is part of the gate, and -max (unlike the relative
// threshold) applies to native rows.
func TestTraceDroppedZeroCeiling(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-max", "trace_dropped=0",
		writeJSON(t, "old.json", liveObsBench(5, 0)), writeJSON(t, "new.json", liveObsBench(5, 0))}, &out, &errb)
	if code != 0 {
		t.Fatalf("run = %d, want 0 with zero drops\nstdout: %s\nstderr: %s", code, out.String(), errb.String())
	}

	out.Reset()
	errb.Reset()
	code = run([]string{"-max", "trace_dropped=0",
		writeJSON(t, "old.json", liveObsBench(5, 0)), writeJSON(t, "new.json", liveObsBench(5, 283))}, &out, &errb)
	if code != 1 {
		t.Fatalf("run = %d, want 1 (283 drops over a 0 ceiling)\nstdout: %s", code, out.String())
	}
	if !strings.Contains(out.String(), "trace_dropped") || !strings.Contains(out.String(), "EXCEEDED") {
		t.Errorf("drop violation not named:\n%s", out.String())
	}
}

// shardBench builds a contention-sharded file: a global batched row,
// two sharded sim arms distinguished only by steal window, and a native
// sharded row carrying the lock-wait percentage.
func shardBench(lockWait float64, pct float64) string {
	return fmt.Sprintf(`{
  "experiment": "contention-sharded",
  "runs": [
    {"policy": "adf", "procs": 256, "bench": "matmul", "batch": 64, "time_cycles": 2000000, "speedup": 20,
     "metrics": {"histograms": {"sched.lock.wait": {"count": 900, "sum": 800000}}}},
    {"policy": "adf-shard", "procs": 256, "bench": "matmul", "shard": true, "steal_window": 1,
     "time_cycles": 1900000, "speedup": 21,
     "metrics": {"histograms": {"sched.lock.wait": {"count": 100, "sum": %g}}}},
    {"policy": "adf-shard", "procs": 256, "bench": "matmul", "shard": true, "steal_window": 256,
     "time_cycles": 1800000, "speedup": 22,
     "metrics": {"histograms": {"sched.lock.wait": {"count": 90, "sum": 90000}}}},
    {"policy": "adf-shard", "procs": 256, "bench": "matmul", "shard": true, "steal_window": 0,
     "backend": "native", "wall_ms": 120, "lock_wait_vs_global_pct": %g}
  ]
}`, lockWait, pct)
}

// TestShardRowsDistinctKeys: the K arms of the sharded sweep differ
// only in steal window; the run key must keep them (and the global
// baseline and the native row) from colliding.
func TestShardRowsDistinctKeys(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-threshold", "10",
		writeJSON(t, "old.json", shardBench(100000, 25)),
		writeJSON(t, "new.json", shardBench(100000, 25))}, &out, &errb)
	if code != 0 {
		t.Fatalf("run = %d, want 0\nstdout: %s\nstderr: %s", code, out.String(), errb.String())
	}
	if strings.Contains(out.String(), "only in") {
		t.Errorf("sharded rows collided or went unmatched:\n%s", out.String())
	}
}

// TestShardLockWaitGated: sched.lock.wait growth on a sharded sim row
// trips the relative threshold like any other sim row.
func TestShardLockWaitGated(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-threshold", "10", "-metric", "sched.lock.wait",
		writeJSON(t, "old.json", shardBench(100000, 25)),
		writeJSON(t, "new.json", shardBench(200000, 25))}, &out, &errb)
	if code != 1 {
		t.Fatalf("run = %d, want 1 (lock wait doubled)\nstdout: %s", code, out.String())
	}
	if !strings.Contains(out.String(), "shard|w1") || !strings.Contains(out.String(), "REGRESSION") {
		t.Errorf("sharded lock-wait regression not keyed/named:\n%s", out.String())
	}
}

// TestLockWaitVsGlobalCeiling: the native lock-wait ratio is report-only
// relatively (host-dependent) but gated by -max, mirroring the overhead
// percentages; 100 means "no worse than the global store".
func TestLockWaitVsGlobalCeiling(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-threshold", "10",
		writeJSON(t, "old.json", shardBench(100000, 25)),
		writeJSON(t, "new.json", shardBench(100000, 95))}, &out, &errb)
	if code != 0 {
		t.Fatalf("run = %d, want 0 (relative pct change is report-only)\nstdout: %s\nstderr: %s",
			code, out.String(), errb.String())
	}

	out.Reset()
	errb.Reset()
	code = run([]string{"-max", "lock_wait_vs_global_pct=100",
		writeJSON(t, "old.json", shardBench(100000, 25)),
		writeJSON(t, "new.json", shardBench(100000, 140))}, &out, &errb)
	if code != 1 {
		t.Fatalf("run = %d, want 1 (140%% over a 100%% ceiling)\nstdout: %s", code, out.String())
	}
	if !strings.Contains(out.String(), "lock_wait_vs_global_pct") || !strings.Contains(out.String(), "EXCEEDED") {
		t.Errorf("ceiling violation not named:\n%s", out.String())
	}
}

// tunedBench builds a native-tuned style file: a reference-engine and a
// tuned-engine row of the same bench, the tuned row carrying its best
// wall time as a percentage of the reference arm's.
func tunedBench(refMS, tunedMS, vsRefPct float64, repeat int) string {
	return fmt.Sprintf(`{
  "experiment": "native-tuned",
  "runs": [
    {"policy": "adf", "procs": 4, "bench": "matmul", "backend": "native",
     "engine": "reference", "wall_ms": %g, "repeat": %d},
    {"policy": "adf", "procs": 4, "bench": "matmul", "backend": "native",
     "engine": "tuned", "wall_ms": %g, "repeat": %d, "wall_vs_reference_pct": %g}
  ]
}`, refMS, repeat, tunedMS, repeat, vsRefPct)
}

// TestEngineRowsDistinctKeys: reference and tuned rows of the same
// configuration are separate runs keyed by engine, not a collision.
func TestEngineRowsDistinctKeys(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-threshold", "10",
		writeJSON(t, "old.json", tunedBench(100, 90, 90, 9)),
		writeJSON(t, "new.json", tunedBench(100, 90, 90, 9))}, &out, &errb)
	if code != 0 {
		t.Fatalf("run = %d, want 0\nstdout: %s\nstderr: %s", code, out.String(), errb.String())
	}
	if strings.Contains(out.String(), "only in") {
		t.Errorf("engine rows collided or went unmatched:\n%s", out.String())
	}
}

// TestWallMSDefaultNotGated: without naming wall_ms in -metric, even a
// repeat>=9 native wall-clock blowup stays report-only — default
// all-metric diffs are often cross-host comparisons.
func TestWallMSDefaultNotGated(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-threshold", "10",
		writeJSON(t, "old.json", tunedBench(100, 90, 90, 9)),
		writeJSON(t, "new.json", tunedBench(300, 280, 93, 9))}, &out, &errb)
	if code != 0 {
		t.Fatalf("run = %d, want 0 (wall_ms not explicitly selected)\nstdout: %s", code, out.String())
	}
	if !strings.Contains(out.String(), "not gated") {
		t.Errorf("output missing the reported-not-gated marker:\n%s", out.String())
	}
}

// TestWallMSExplicitGateOnNativeRows: -metric wall_ms on a repeated
// same-host pair is a real budget — a native row past the threshold
// fails the diff despite the usual native exemption.
func TestWallMSExplicitGateOnNativeRows(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-threshold", "50", "-metric", "wall_ms",
		writeJSON(t, "old.json", tunedBench(100, 90, 90, 9)),
		writeJSON(t, "new.json", tunedBench(100, 250, 250, 9))}, &out, &errb)
	if code != 1 {
		t.Fatalf("run = %d, want 1 (tuned wall grew 178%% past a 50%% budget)\nstdout: %s", code, out.String())
	}
	if !strings.Contains(out.String(), "REGRESSION") || !strings.Contains(out.String(), "|tuned") {
		t.Errorf("regression not keyed to the tuned engine row:\n%s", out.String())
	}

	// Within budget: passes.
	out.Reset()
	errb.Reset()
	code = run([]string{"-threshold", "50", "-metric", "wall_ms",
		writeJSON(t, "old.json", tunedBench(100, 90, 90, 9)),
		writeJSON(t, "new.json", tunedBench(110, 100, 91, 9))}, &out, &errb)
	if code != 0 {
		t.Fatalf("run = %d, want 0 (10%% drift under a 50%% budget)\nstdout: %s\nstderr: %s",
			code, out.String(), errb.String())
	}
}

// TestWallMSGateNeedsRepeats: the explicit wall gate only arms when
// both rows' medians cover at least 9 repetitions — single-shot wall
// times are too noisy to gate even same-host.
func TestWallMSGateNeedsRepeats(t *testing.T) {
	for _, tc := range []struct{ oldRep, newRep int }{{1, 9}, {9, 1}, {3, 3}} {
		var out, errb bytes.Buffer
		code := run([]string{"-threshold", "50", "-metric", "wall_ms",
			writeJSON(t, "old.json", tunedBench(100, 90, 90, tc.oldRep)),
			writeJSON(t, "new.json", tunedBench(100, 250, 250, tc.newRep))}, &out, &errb)
		if code != 0 {
			t.Errorf("repeat %d->%d: run = %d, want 0 (below the repeat floor)\nstdout: %s",
				tc.oldRep, tc.newRep, code, out.String())
		}
	}
}

// TestWallMSZeroToNonzero: a row whose wall clock appears from zero
// (an old sim-style row without wall_ms) must not register an
// infinite regression — absence, not zero, is the baseline state.
func TestWallMSZeroToNonzero(t *testing.T) {
	oldB := `{
  "experiment": "native-tuned",
  "runs": [
    {"policy": "adf", "procs": 4, "bench": "matmul", "backend": "native",
     "engine": "tuned", "repeat": 9}
  ]
}`
	var out, errb bytes.Buffer
	code := run([]string{"-threshold", "50", "-metric", "wall_ms",
		writeJSON(t, "old.json", oldB),
		writeJSON(t, "new.json", tunedBench(100, 90, 90, 9))}, &out, &errb)
	if code != 0 {
		t.Fatalf("run = %d, want 0 (old row has no wall_ms to compare)\nstdout: %s", code, out.String())
	}
}

// TestWallMSMissingPair: a tuned row with no old-file counterpart is
// reported as unmatched, never gated.
func TestWallMSMissingPair(t *testing.T) {
	oldB := `{
  "experiment": "native-tuned",
  "runs": [
    {"policy": "adf", "procs": 4, "bench": "matmul", "backend": "native",
     "engine": "reference", "wall_ms": 100, "repeat": 9}
  ]
}`
	var out, errb bytes.Buffer
	code := run([]string{"-threshold", "50", "-metric", "wall_ms",
		writeJSON(t, "old.json", oldB),
		writeJSON(t, "new.json", tunedBench(100, 250, 250, 9))}, &out, &errb)
	if code != 0 {
		t.Fatalf("run = %d, want 0 (tuned row unmatched)\nstdout: %s", code, out.String())
	}
	if !strings.Contains(out.String(), "only in") {
		t.Errorf("unmatched tuned row not reported:\n%s", out.String())
	}
}

// TestWallVsRefCeiling: -max wall_vs_reference_pct bounds how much
// slower than the reference engine the tuned engine may run; relative
// deltas between two files stay report-only.
func TestWallVsRefCeiling(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-threshold", "10",
		writeJSON(t, "old.json", tunedBench(100, 90, 90, 9)),
		writeJSON(t, "new.json", tunedBench(100, 98, 98, 9))}, &out, &errb)
	if code != 0 {
		t.Fatalf("run = %d, want 0 (vs-ref relative delta is report-only)\nstdout: %s\nstderr: %s",
			code, out.String(), errb.String())
	}

	out.Reset()
	errb.Reset()
	code = run([]string{"-max", "wall_vs_reference_pct=105",
		writeJSON(t, "old.json", tunedBench(100, 90, 90, 9)),
		writeJSON(t, "new.json", tunedBench(100, 112, 112, 9))}, &out, &errb)
	if code != 1 {
		t.Fatalf("run = %d, want 1 (112%% over a 105%% ceiling)\nstdout: %s", code, out.String())
	}
	if !strings.Contains(out.String(), "wall_vs_reference_pct") || !strings.Contains(out.String(), "EXCEEDED") {
		t.Errorf("ceiling violation not named:\n%s", out.String())
	}

	out.Reset()
	errb.Reset()
	code = run([]string{"-max", "wall_vs_reference_pct=105",
		writeJSON(t, "old.json", tunedBench(100, 98, 98, 9)),
		writeJSON(t, "new.json", tunedBench(100, 98, 98, 9))}, &out, &errb)
	if code != 0 {
		t.Fatalf("run = %d, want 0 (98%% under a 105%% ceiling; reference rows carry no ratio)\nstdout: %s",
			code, out.String())
	}
}
