// Command benchcheck validates ptbench's machine-readable output files
// (BENCH_<id>.json) against the checked-in contract schema. CI runs it
// after the smoke benchmark so a field rename or type drift in the JSON
// layer fails the build instead of silently breaking downstream
// consumers.
//
//	benchcheck [-schema testdata/bench.schema.json] BENCH_fig1.json ...
package main

import (
	"flag"
	"fmt"
	"os"

	"spthreads/internal/jsonschema"
)

func main() {
	schemaPath := flag.String("schema", "testdata/bench.schema.json", "schema file to validate against")
	flag.Parse()

	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: benchcheck [-schema file] <bench json file>...")
		os.Exit(2)
	}
	raw, err := os.ReadFile(*schemaPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchcheck: %v\n", err)
		os.Exit(1)
	}
	schema, err := jsonschema.Parse(raw)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchcheck: %v\n", err)
		os.Exit(1)
	}

	failed := false
	for _, path := range flag.Args() {
		doc, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchcheck: %v\n", err)
			failed = true
			continue
		}
		if err := schema.ValidateJSON(doc); err != nil {
			fmt.Fprintf(os.Stderr, "benchcheck: %s: %v\n", path, err)
			failed = true
			continue
		}
		fmt.Printf("benchcheck: %s ok\n", path)
	}
	if failed {
		os.Exit(1)
	}
}
