package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"spthreads/internal/jsonschema"
	"spthreads/internal/trace"
)

// writeTrace records a small fork-join trace and writes it as JSONL.
func writeTrace(t *testing.T) string {
	t.Helper()
	rec := trace.NewRecorder(0)
	rec.RecordArg(0, -1, 1, trace.KindCreate, 0)
	rec.RecordArg(0, -1, 1, trace.KindStackAlloc, 8192)
	rec.Record(0, 0, 1, trace.KindDispatch)
	rec.RecordArg(100, 0, 2, trace.KindCreate, 1)
	rec.RecordArg(100, 0, 2, trace.KindStackAlloc, 8192)
	rec.Record(100, 0, 1, trace.KindPreempt)
	rec.Record(100, 0, 2, trace.KindDispatch)
	rec.RecordArg(200, 0, 2, trace.KindAlloc, 4096)
	rec.RecordArg(400, 0, 2, trace.KindFree, 4096)
	rec.Record(500, 0, 2, trace.KindExit)
	rec.Record(500, 0, 1, trace.KindDispatch)
	rec.RecordArg(520, 0, 1, trace.KindJoin, 2)
	rec.Record(600, 0, 1, trace.KindExit)

	path := filepath.Join(t.TempDir(), "trace.jsonl")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := rec.WriteJSONL(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestTextReport: the default output names every headline quantity the
// tool exists to report.
func TestTextReport(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-policy", "adf", writeTrace(t)}, &out, &errb)
	if code != 0 {
		t.Fatalf("run = %d\nstderr: %s", code, errb.String())
	}
	for _, want := range []string{"policy adf", "work W", "depth D", "parallelism W/D", "serial S1", "peak", "bound:", "critical path"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
}

// TestJSONMatchesSchema: -json output validates against the checked-in
// report contract (the same check CI runs via benchcheck -schema).
func TestJSONMatchesSchema(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-json", "-procs", "2", writeTrace(t)}, &out, &errb)
	if code != 0 {
		t.Fatalf("run = %d\nstderr: %s", code, errb.String())
	}
	raw, err := os.ReadFile("../../testdata/analyze.schema.json")
	if err != nil {
		t.Fatal(err)
	}
	schema, err := jsonschema.Parse(raw)
	if err != nil {
		t.Fatal(err)
	}
	if err := schema.ValidateJSON(out.Bytes()); err != nil {
		t.Errorf("-json output violates the schema: %v\n%s", err, out.String())
	}
}

// TestOutFile: -o writes the report to a file.
func TestOutFile(t *testing.T) {
	outPath := filepath.Join(t.TempDir(), "report.json")
	var out, errb bytes.Buffer
	if code := run([]string{"-json", "-o", outPath, writeTrace(t)}, &out, &errb); code != 0 {
		t.Fatalf("run = %d\nstderr: %s", code, errb.String())
	}
	raw, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), "work_cycles") {
		t.Errorf("report file missing content: %s", raw)
	}
}

// TestEmptyTraceExits2: empty and truncated inputs are usage errors.
func TestEmptyTraceExits2(t *testing.T) {
	empty := filepath.Join(t.TempDir(), "empty.jsonl")
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errb bytes.Buffer
	if code := run([]string{empty}, &out, &errb); code != 2 {
		t.Fatalf("run = %d, want 2", code)
	}
	if !strings.Contains(errb.String(), "empty trace") || !strings.Contains(errb.String(), "usage:") {
		t.Errorf("stderr missing diagnostics: %s", errb.String())
	}

	trunc := filepath.Join(t.TempDir(), "trunc.jsonl")
	if err := os.WriteFile(trunc, []byte(`{"ts":0,"pro`), 0o644); err != nil {
		t.Fatal(err)
	}
	errb.Reset()
	if code := run([]string{trunc}, &out, &errb); code != 2 {
		t.Fatalf("run = %d, want 2", code)
	}
}

// TestUsageAndMissingFile: no args is usage (2); a nonexistent path is
// an I/O failure (1).
func TestUsageAndMissingFile(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run(nil, &out, &errb); code != 2 {
		t.Fatalf("run() = %d, want 2", code)
	}
	if code := run([]string{"/nonexistent/trace.jsonl"}, &out, &errb); code != 1 {
		t.Fatalf("run(missing) = %d, want 1", code)
	}
}
