// Command ptanalyze reconstructs the fork-join DAG from a recorded
// JSONL trace (pttrace -events, or any writer of the trace wire
// format) and reports the paper's model quantities: work W, depth D,
// parallelism W/D, serial space S₁, the measured peak footprint, the
// fitted space-bound constant c, and the critical path attributed to
// compute / ready-wait / lock / quota / dummy-throttle categories.
//
//	ptanalyze [-policy adf] [-procs N] [-quota BYTES] [-stack BYTES]
//	          [-json] [-o report.json] trace.jsonl
//
// Exit status: 0 on success, 2 for usage errors and unusable traces
// (empty or truncated), 1 for I/O failures.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"spthreads/internal/analyze"
	"spthreads/internal/trace"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("ptanalyze", flag.ContinueOnError)
	fs.SetOutput(stderr)
	policy := fs.String("policy", "", "label the report with the scheduler policy that produced the trace")
	procs := fs.Int("procs", 0, "processor count (0 infers from the trace)")
	quota := fs.Int64("quota", 0, "ADF memory quota K in bytes, for the report")
	stack := fs.Int64("stack", 0, "default thread stack size in bytes (0 infers the root's)")
	jsonOut := fs.Bool("json", false, "emit the report as JSON instead of text")
	outPath := fs.String("o", "", "write the report to this file instead of stdout")
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: ptanalyze [flags] trace.jsonl")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 1 {
		fs.Usage()
		return 2
	}

	f, err := os.Open(fs.Arg(0))
	if err != nil {
		fmt.Fprintf(stderr, "ptanalyze: %v\n", err)
		return 1
	}
	rec, rerr := trace.ReadJSONL(f)
	f.Close()
	if rerr != nil {
		fmt.Fprintf(stderr, "ptanalyze: %s: %v\n", fs.Arg(0), rerr)
		fs.Usage()
		return 2
	}

	rep, err := analyze.Analyze(rec, analyze.Options{
		Policy:       *policy,
		Procs:        *procs,
		Quota:        *quota,
		DefaultStack: *stack,
	})
	if err != nil {
		fmt.Fprintf(stderr, "ptanalyze: %s: %v\n", fs.Arg(0), err)
		fs.Usage()
		return 2
	}

	w := stdout
	if *outPath != "" {
		of, err := os.Create(*outPath)
		if err != nil {
			fmt.Fprintf(stderr, "ptanalyze: %v\n", err)
			return 1
		}
		defer of.Close()
		w = of
	}
	if *jsonOut {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fmt.Fprintf(stderr, "ptanalyze: %v\n", err)
			return 1
		}
		return 0
	}
	rep.WriteText(w)
	return 0
}
